// conn-statusor-unchecked-value MUST fire: each access below takes a
// StatusOr payload with no ok() check on THAT object earlier in the
// function — including the classic near-miss where a different StatusOr
// was the one checked.

#include "common/status.h"

namespace {

conn::StatusOr<int> Parse();

int UncheckedLocal() {
  conn::StatusOr<int> got = Parse();
  return got.value();  // conn-tidy: expect
}

int UncheckedTemporary() {
  return Parse().value();  // conn-tidy: expect
}

int CheckedTheWrongOne(conn::StatusOr<int> a, conn::StatusOr<int> b) {
  if (!a.ok()) return 0;
  return b.value();  // conn-tidy: expect
}

int CheckedTooLate(conn::StatusOr<int> s) {
  const int v = s.value();  // conn-tidy: expect
  if (!s.ok()) return 0;
  return v;
}

}  // namespace
