// conn-float-eq-in-geom MUST fire: computed floating values compared
// exactly.  (The fixture test points the check's PathFilter at fixtures/;
// in CI the default filter scopes it to src/geom/ and src/vis/.)

namespace {

bool SamePoint(double ax, double ay, double bx, double by) {
  return ax == bx && ay == by;  // conn-tidy: expect
}

bool Moved(float before, float after) {
  return before != after;  // conn-tidy: expect
}

}  // namespace

int main() {
  return SamePoint(0.1 + 0.2, 0.0, 0.3, 0.0) || Moved(1.0f, 1.0f) ? 0 : 1;
}
