// conn-arena-epoch-reset must stay silent: scan state moves only through
// the arena API — construct a scan (epoch bump) or Revalidate a warm one.

#include "vis/dijkstra.h"

namespace {

double FurthestSettled(conn::vis::VisGraph* graph) {
  conn::vis::ScanArena arena;
  conn::vis::DijkstraScan scan(graph, {0.0, 0.0}, &arena);
  conn::vis::VertexId v = 0;
  double dist = 0.0;
  int32_t pred = 0;
  double last = 0.0;
  while (scan.Next(&v, &dist, &pred)) last = dist;
  scan.Revalidate();
  return last;
}

}  // namespace

int main() {
  (void)&FurthestSettled;
  return 0;
}
