// conn-float-eq-in-geom must stay silent: eps-band comparison and the two
// sanctioned exact idioms (literal-zero guards on assigned-never-computed
// values, whether spelled 0.0 or 0).

#include <cmath>

namespace {

constexpr double kEpsDist = 1e-9;

bool NearlyEqual(double a, double b) { return std::fabs(a - b) < kEpsDist; }

bool IsDegenerate(double len) { return len == 0.0; }

bool IsUnset(float v) { return v == 0; }

}  // namespace

int main() {
  return (NearlyEqual(0.1 + 0.2, 0.3) && IsDegenerate(0.0) && IsUnset(0.0f))
             ? 0
             : 1;
}
