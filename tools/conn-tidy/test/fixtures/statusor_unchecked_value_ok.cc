// conn-statusor-unchecked-value must stay silent: both sanctioned guard
// shapes, plus value() through std::move after the guard (the repo's
// move-out idiom).

#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace {

conn::StatusOr<int> Parse();

int GuardedByCheck() {
  conn::StatusOr<int> got = Parse();
  CONN_CHECK(got.ok());
  return got.value();
}

int GuardedByEarlyReturn() {
  conn::StatusOr<int> got = Parse();
  if (!got.ok()) return -1;
  return got.value();
}

int MovedOutAfterGuard() {
  conn::StatusOr<int> got = Parse();
  if (!got.ok()) return -1;
  return std::move(got).value();
}

}  // namespace
