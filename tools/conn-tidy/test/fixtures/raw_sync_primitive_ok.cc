// conn-raw-sync-primitive must stay silent: the capability-annotated
// wrappers are the sanctioned latch surface, and common/mutex.h itself —
// where the raw primitives legitimately live — is on the check's
// AllowedFiles list.

#include "common/mutex.h"

namespace {

struct Queue {
  conn::Mutex mu;
  conn::CondVar ready;
  int depth GUARDED_BY(mu) = 0;
};

int Drain(Queue* q) {
  conn::MutexLock hold(q->mu);
  return q->depth;
}

}  // namespace

int main() {
  Queue q;
  return Drain(&q);
}
