// conn-arena-epoch-reset MUST fire on every direct stamp-array write
// below.  The arrays are private (access control already rejects this —
// see tests/compile_fail/epoch_stamp_write.cc), so the fixture unseals the
// class: what fires here is the semantic check, which also covers future
// friends and vis-layer members that could name the stamps legally.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "vis/vis_graph.h"

#define private public
#include "vis/dijkstra.h"
#undef private

namespace {

void WipeArena(conn::vis::ScanArena* arena) {
  arena->dist_stamp_.clear();        // conn-tidy: expect
  arena->settled_stamp_.resize(0);   // conn-tidy: expect
  for (size_t i = 0; i < arena->seeded_stamp_.size(); ++i) {
    arena->seeded_stamp_[i] = 0;     // conn-tidy: expect
  }
}

}  // namespace

int main() {
  conn::vis::ScanArena arena;
  WipeArena(&arena);
  return 0;
}
