// conn-pinnedpage-escape MUST fire: each function below leaks a raw view
// of PinnedPage::page() bytes past the pin's lifetime, through one of the
// escape shapes the check knows (return, field store, returned lambda) —
// and always through a local alias, which the old grep lint could not see.

#include "common/check.h"
#include "storage/pager.h"

namespace conn {
namespace storage {
namespace {

struct ViewCache {
  const Page* last = nullptr;
};

const Page* ReturnEscape(Pager& pager) {
  StatusOr<PinnedPage> got = pager.Fetch(0);
  CONN_CHECK(got.ok());
  const Page& view = got.value().page();
  const Page* alias = &view;
  return alias;  // conn-tidy: expect
}

void FieldEscape(Pager& pager, ViewCache* cache) {
  StatusOr<PinnedPage> got = pager.Fetch(0);
  CONN_CHECK(got.ok());
  cache->last = &got.value().page();  // conn-tidy: expect
}

auto LambdaEscape(Pager& pager) {
  StatusOr<PinnedPage> got = pager.Fetch(0);
  CONN_CHECK(got.ok());
  const Page& view = got.value().page();
  return [&view] { return view.bytes[0]; };  // conn-tidy: expect
}

const Page* CompletionPathEscape(Pager& pager) {
  // The async pipeline's completion path is still a pin: a borrow of the
  // Wait()-obtained PinnedPage's bytes must not outlive it either.
  PageRequest req = pager.FetchAsync(0);
  StatusOr<PinnedPage> got = req.Wait();
  CONN_CHECK(got.ok());
  const Page& view = got.value().page();
  const Page* alias = &view;
  return alias;  // conn-tidy: expect
}

}  // namespace
}  // namespace storage
}  // namespace conn
