// conn-raw-sync-primitive MUST fire on every raw primitive below: a bare
// std::mutex member, a std::condition_variable, and a std::lock_guard are
// all invisible to -Wthread-safety, which is exactly why the repo routes
// locking through common/mutex.h.

#include <condition_variable>
#include <mutex>

namespace {

struct Queue {
  std::mutex mu;                  // conn-tidy: expect
  std::condition_variable ready;  // conn-tidy: expect
  int depth = 0;
};

int Drain(Queue* q) {
  std::lock_guard<std::mutex> hold(q->mu);  // conn-tidy: expect
  return q->depth;
}

}  // namespace

int main() {
  Queue q;
  return Drain(&q);
}
