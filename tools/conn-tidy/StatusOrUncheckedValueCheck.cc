#include "StatusOrUncheckedValueCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace conn {

namespace {

// Resolves the variable or member a StatusOr expression refers to, looking
// through parens, implicit casts, dereferences, and std::move/std::forward
// (`std::move(got).value()` still accesses `got`).
const ValueDecl* UnderlyingDecl(const Expr* e) {
  if (e == nullptr) return nullptr;
  e = e->IgnoreParenImpCasts();
  while (const auto* call = llvm::dyn_cast<CallExpr>(e)) {
    const FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr || call->getNumArgs() != 1 ||
        !callee->isInStdNamespace() ||
        !callee->getDeclName().isIdentifier() ||
        (callee->getName() != "move" && callee->getName() != "forward")) {
      break;
    }
    e = call->getArg(0)->IgnoreParenImpCasts();
  }
  if (const auto* ref = llvm::dyn_cast<DeclRefExpr>(e))
    return ref->getDecl();
  if (const auto* member = llvm::dyn_cast<MemberExpr>(e))
    return member->getMemberDecl();
  if (const auto* unary = llvm::dyn_cast<UnaryOperator>(e)) {
    if (unary->getOpcode() == UO_Deref)
      return UnderlyingDecl(unary->getSubExpr());
  }
  return nullptr;
}

// True when the function body contains an ok() call on \p key at a file
// location strictly before \p before.
bool HasEarlierOkCheck(const Stmt* stmt, const ValueDecl* key,
                       SourceLocation before, const SourceManager& sm) {
  if (stmt == nullptr) return false;
  if (const auto* call = llvm::dyn_cast<CXXMemberCallExpr>(stmt)) {
    const CXXMethodDecl* method = call->getMethodDecl();
    if (method != nullptr && method->getDeclName().isIdentifier() &&
        method->getName() == "ok" &&
        UnderlyingDecl(call->getImplicitObjectArgument()) == key) {
      const SourceLocation ok_loc = sm.getFileLoc(call->getExprLoc());
      if (ok_loc.isValid() && sm.isBeforeInTranslationUnit(ok_loc, before))
        return true;
    }
  }
  for (const Stmt* child : stmt->children())
    if (HasEarlierOkCheck(child, key, before, sm)) return true;
  return false;
}

}  // namespace

void StatusOrUncheckedValueCheck::registerMatchers(MatchFinder* finder) {
  const auto statusor_class = cxxRecordDecl(hasName("::conn::StatusOr"));
  finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(hasName("value"), ofClass(statusor_class))),
          forFunction(functionDecl().bind("fn")))
          .bind("value-call"),
      this);
  finder->addMatcher(
      cxxOperatorCallExpr(hasAnyOverloadedOperatorName("*", "->"),
                          callee(cxxMethodDecl(ofClass(statusor_class))),
                          forFunction(functionDecl().bind("fn")))
          .bind("op-call"),
      this);
}

void StatusOrUncheckedValueCheck::check(
    const MatchFinder::MatchResult& result) {
  const Expr* object = nullptr;
  SourceLocation loc;
  if (const auto* call =
          result.Nodes.getNodeAs<CXXMemberCallExpr>("value-call")) {
    object = call->getImplicitObjectArgument();
    loc = call->getExprLoc();
  } else if (const auto* op =
                 result.Nodes.getNodeAs<CXXOperatorCallExpr>("op-call")) {
    if (op->getNumArgs() > 0) object = op->getArg(0);
    loc = op->getExprLoc();
  }
  if (object == nullptr || loc.isInvalid()) return;
  const SourceManager& sm = *result.SourceManager;
  const SourceLocation file_loc = sm.getFileLoc(loc);
  const ValueDecl* key = UnderlyingDecl(object);
  const auto* fn = result.Nodes.getNodeAs<FunctionDecl>("fn");
  if (key != nullptr && fn != nullptr &&
      HasEarlierOkCheck(fn->getBody(), key, file_loc, sm)) {
    return;
  }
  if (key != nullptr) {
    diag(file_loc,
         "StatusOr payload of %0 accessed with no earlier ok() check in "
         "this function; guard with CONN_CHECK(%0.ok()) or an early "
         "return on !ok()")
        << key->getName();
  } else {
    diag(file_loc,
         "StatusOr payload accessed on a temporary; bind the StatusOr to a "
         "local and check ok() before taking the value");
  }
}

}  // namespace conn
}  // namespace tidy
}  // namespace clang
