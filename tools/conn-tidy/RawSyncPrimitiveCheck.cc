#include "RawSyncPrimitiveCheck.h"

#include "ConnTidyUtils.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang {
namespace tidy {
namespace conn {

RawSyncPrimitiveCheck::RawSyncPrimitiveCheck(StringRef name,
                                             ClangTidyContext* context)
    : ClangTidyCheck(name, context),
      raw_allowed_files_(Options.get("AllowedFiles", "common/mutex.h")),
      allowed_files_(SplitList(raw_allowed_files_)) {}

void RawSyncPrimitiveCheck::storeOptions(ClangTidyOptions::OptionMap& opts) {
  Options.store(opts, "AllowedFiles", raw_allowed_files_);
}

void RawSyncPrimitiveCheck::registerMatchers(MatchFinder* finder) {
  // Matches every spelled-out use of a raw primitive type: fields, locals,
  // parameters, template arguments, return types.  Sugar layers
  // (elaborated and template-specialization types) each produce a TypeLoc
  // at the same location; check() dedupes.
  const auto raw_sync_decl = namedDecl(hasAnyName(
      "::std::mutex", "::std::timed_mutex", "::std::recursive_mutex",
      "::std::recursive_timed_mutex", "::std::shared_mutex",
      "::std::shared_timed_mutex", "::std::condition_variable",
      "::std::condition_variable_any", "::std::lock_guard",
      "::std::unique_lock", "::std::scoped_lock", "::std::shared_lock"));
  finder->addMatcher(typeLoc(loc(qualType(hasDeclaration(raw_sync_decl))),
                             unless(isExpansionInSystemHeader()))
                         .bind("use"),
                     this);
}

void RawSyncPrimitiveCheck::check(const MatchFinder::MatchResult& result) {
  const auto* use = result.Nodes.getNodeAs<TypeLoc>("use");
  if (use == nullptr) return;
  const SourceManager& sm = *result.SourceManager;
  const SourceLocation loc = sm.getFileLoc(use->getBeginLoc());
  if (loc.isInvalid()) return;
  if (PathEndsWithAny(sm.getFilename(loc), allowed_files_)) return;
  if (!reported_.insert(loc).second) return;
  diag(loc,
       "raw standard synchronization primitive %0; use the "
       "capability-annotated wrappers in common/mutex.h (conn::Mutex, "
       "conn::MutexLock, conn::CondVar) so -Wthread-safety sees the "
       "acquisition")
      << use->getType().getAsString();
}

}  // namespace conn
}  // namespace tidy
}  // namespace clang
