// conn-float-eq-in-geom: flags exact floating-point ==/!= comparisons in
// geometry code.  Robust geometric predicates go through the eps ladder in
// geom/predicates.h (kEpsInterior / kEpsDist / kEpsParam / kEpsSliver);
// a raw double equality silently depends on bit-exact arithmetic.
//
// Two exact-compare idioms stay legal, because they really are exact:
//   * comparisons against a literal zero (degenerate-input guards such as
//     `len == 0.0` — the value was never computed, it was assigned), and
//   * compiler-defaulted comparison operators (vec.h's `= default`).
//
// Options:
//   PathFilter        llvm::Regex applied to the file path; only matching
//                     files are checked (default "src/(geom|vis)/").
//   AllowedFunctions  ';'-separated fully qualified function names whose
//                     bodies may compare exactly (default empty).

#ifndef CONN_TOOLS_CONN_TIDY_FLOAT_EQ_IN_GEOM_CHECK_H_
#define CONN_TOOLS_CONN_TIDY_FLOAT_EQ_IN_GEOM_CHECK_H_

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"
#include "clang/Basic/SourceLocation.h"
#include "llvm/ADT/DenseSet.h"
#include "llvm/Support/Regex.h"

namespace clang {
namespace tidy {
namespace conn {

class FloatEqInGeomCheck : public ClangTidyCheck {
 public:
  FloatEqInGeomCheck(StringRef name, ClangTidyContext* context);
  void registerMatchers(ast_matchers::MatchFinder* finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult& result) override;
  void storeOptions(ClangTidyOptions::OptionMap& opts) override;

 private:
  const std::string raw_path_filter_;
  const std::string raw_allowed_functions_;
  const std::vector<std::string> allowed_functions_;
  llvm::Regex path_filter_;
  llvm::DenseSet<SourceLocation> reported_;
};

}  // namespace conn
}  // namespace tidy
}  // namespace clang

#endif  // CONN_TOOLS_CONN_TIDY_FLOAT_EQ_IN_GEOM_CHECK_H_
